#include "distrib/local_spanner.h"

#include <algorithm>
#include <bit>
#include <unordered_map>

#include "core/greedy_exact.h"
#include "core/modified_greedy.h"
#include "util/check.h"

namespace ftspan::distrib {

namespace {

constexpr std::uint32_t kTagHello = 1;     // cluster ids + "you are my parent"
constexpr std::uint32_t kTagReport = 2;    // convergecast: subtree edge list
constexpr std::uint32_t kTagSolution = 3;  // broadcast: chosen edges

std::uint64_t pack_weight(Weight w) { return std::bit_cast<std::uint64_t>(w); }
Weight unpack_weight(std::uint64_t bits) { return std::bit_cast<Weight>(bits); }

/// An edge in transit: global endpoints and weight.
struct WireEdge {
  VertexId u, v;
  Weight w;
};

/// Phase B program: convergecast + greedy at centers + broadcast, all
/// partitions in parallel.
class LocalSpannerProgram final : public NodeProgram {
 public:
  LocalSpannerProgram(const LocalSpannerConfig& config, bool weighted,
                      std::vector<VertexId> my_center,
                      std::vector<VertexId> my_parent)
      : config_(config),
        weighted_(weighted),
        center_(std::move(my_center)),
        parent_(std::move(my_parent)) {
    const std::size_t ell = center_.size();
    children_.assign(ell, {});
    subtree_edges_.assign(ell, {});
    reports_pending_.assign(ell, 0);
    report_sent_.assign(ell, 0);
    solution_done_.assign(ell, 0);
  }

  void on_round(NodeContext& ctx) override {
    const std::size_t ell = center_.size();
    for (const auto& msg : ctx.inbox()) handle(ctx, msg);

    if (ctx.round() == 0) {
      // Hello: my cluster per partition + parent bitmask.
      const std::size_t mask_words = (ell + 63) / 64;
      for (const auto& arc : ctx.neighbors()) {
        Message msg;
        msg.tag = kTagHello;
        msg.words.reserve(ell + mask_words);
        for (std::size_t j = 0; j < ell; ++j) msg.words.push_back(center_[j]);
        std::vector<std::uint64_t> mask(mask_words, 0);
        for (std::size_t j = 0; j < ell; ++j)
          if (parent_[j] == arc.to) mask[j / 64] |= std::uint64_t{1} << (j % 64);
        msg.words.insert(msg.words.end(), mask.begin(), mask.end());
        msg.bits = 8 + static_cast<std::uint32_t>(
                           ell * (bits_for_universe(ctx.n()) + 1));
        ctx.send(arc.to, std::move(msg));
      }
      return;
    }

    if (ctx.round() == 1) {
      // Hellos processed above: children and neighbor clusters known.
      // Seed each partition's subtree edge list with owned cluster edges
      // (each intra-cluster edge is owned by its smaller endpoint).
      for (std::size_t j = 0; j < ell; ++j) {
        reports_pending_[j] = static_cast<std::uint32_t>(children_[j].size());
        for (const auto& arc : ctx.neighbors()) {
          if (ctx.id() < arc.to && neighbor_center_[arc.to][j] == center_[j])
            subtree_edges_[j].push_back(WireEdge{ctx.id(), arc.to, arc.w});
        }
      }
    }

    if (ctx.round() >= 1) advance(ctx);
  }

  [[nodiscard]] bool finished() const override {
    return std::all_of(solution_done_.begin(), solution_done_.end(),
                       [](std::uint8_t d) { return d != 0; });
  }

  /// Chosen edges of clusters centered here (valid after the run).
  [[nodiscard]] const std::vector<WireEdge>& chosen_edges() const noexcept {
    return chosen_;
  }

 private:
  void handle(NodeContext& ctx, const Message& msg) {
    const std::size_t ell = center_.size();
    switch (msg.tag) {
      case kTagHello: {
        auto& centers = neighbor_center_[msg.from];
        centers.assign(msg.words.begin(),
                       msg.words.begin() + static_cast<std::ptrdiff_t>(ell));
        for (std::size_t j = 0; j < ell; ++j) {
          const std::uint64_t word = msg.words[ell + j / 64];
          if ((word >> (j % 64)) & 1) children_[j].push_back(msg.from);
        }
        break;
      }
      case kTagReport: {
        const auto j = static_cast<std::size_t>(msg.words[0]);
        const auto count = static_cast<std::size_t>(msg.words[1]);
        for (std::size_t i = 0; i < count; ++i) {
          subtree_edges_[j].push_back(
              WireEdge{static_cast<VertexId>(msg.words[2 + 3 * i]),
                       static_cast<VertexId>(msg.words[3 + 3 * i]),
                       unpack_weight(msg.words[4 + 3 * i])});
        }
        FTSPAN_ASSERT(reports_pending_[j] > 0, "unexpected report");
        --reports_pending_[j];
        break;
      }
      case kTagSolution: {
        const auto j = static_cast<std::size_t>(msg.words[0]);
        relay_solution(ctx, j, msg.words);
        solution_done_[j] = 1;
        break;
      }
      default:
        FTSPAN_ASSERT(false, "unknown message tag");
    }
  }

  /// Convergecast & center computation once children have reported.
  void advance(NodeContext& ctx) {
    const std::size_t ell = center_.size();
    for (std::size_t j = 0; j < ell; ++j) {
      if (report_sent_[j] != 0 || reports_pending_[j] != 0) continue;
      if (ctx.round() < 1) continue;
      report_sent_[j] = 1;
      if (center_[j] == ctx.id()) {
        // I am the center: solve and broadcast down.
        solve_cluster(ctx, j);
        solution_done_[j] = 1;
      } else {
        Message msg;
        msg.tag = kTagReport;
        msg.words = {static_cast<std::uint64_t>(j), subtree_edges_[j].size()};
        for (const auto& e : subtree_edges_[j]) {
          msg.words.push_back(e.u);
          msg.words.push_back(e.v);
          msg.words.push_back(pack_weight(e.w));
        }
        msg.bits = 8 + static_cast<std::uint32_t>(64 * msg.words.size());
        ctx.send(parent_[j], std::move(msg));
        subtree_edges_[j].clear();
      }
    }
  }

  void solve_cluster(NodeContext& ctx, std::size_t j) {
    // Build the induced cluster graph from the gathered edges.
    std::unordered_map<VertexId, VertexId> local_id;
    std::vector<VertexId> global_id;
    auto intern = [&](VertexId v) {
      const auto [it, added] =
          local_id.try_emplace(v, static_cast<VertexId>(global_id.size()));
      if (added) global_id.push_back(v);
      return it->second;
    };
    intern(ctx.id());
    std::vector<Edge> edges;
    edges.reserve(subtree_edges_[j].size());
    for (const auto& e : subtree_edges_[j])
      edges.push_back(Edge{intern(e.u), intern(e.v), e.w});
    const Graph cluster =
        Graph::from_edges(global_id.size(), edges, weighted_);

    const Graph h =
        config_.use_exact_greedy
            ? exact_greedy_spanner(cluster, config_.params).spanner
            : modified_greedy_spanner(cluster, config_.params).spanner;

    std::vector<std::uint64_t> words = {static_cast<std::uint64_t>(j),
                                        static_cast<std::uint64_t>(h.m())};
    for (const auto& e : h.edges()) {
      words.push_back(global_id[e.u]);
      words.push_back(global_id[e.v]);
      words.push_back(pack_weight(e.w));
      chosen_.push_back(WireEdge{global_id[e.u], global_id[e.v], e.w});
    }
    relay_solution(ctx, j, words);
  }

  /// Sends the solution words down to this node's children for partition j.
  void relay_solution(NodeContext& ctx, std::size_t j,
                      const std::vector<std::uint64_t>& words) {
    for (const auto child : children_[j]) {
      Message msg;
      msg.tag = kTagSolution;
      msg.words = words;
      msg.bits = 8 + static_cast<std::uint32_t>(64 * words.size());
      ctx.send(child, std::move(msg));
    }
  }

  const LocalSpannerConfig& config_;
  bool weighted_;
  std::vector<VertexId> center_;
  std::vector<VertexId> parent_;
  std::vector<std::vector<VertexId>> children_;
  std::unordered_map<VertexId, std::vector<VertexId>> neighbor_center_;
  std::vector<std::vector<WireEdge>> subtree_edges_;
  std::vector<std::uint32_t> reports_pending_;
  std::vector<std::uint8_t> report_sent_;
  std::vector<std::uint8_t> solution_done_;
  std::vector<WireEdge> chosen_;
};

}  // namespace

DistributedBuild local_ft_spanner(const Graph& g,
                                  const LocalSpannerConfig& config) {
  config.params.validate();
  DistributedBuild out;

  Decomposition decomposition = build_decomposition(g, config.decomposition);
  out.decomposition_stats = decomposition.stats;
  out.partitions = decomposition.partitions.size();
  out.uncovered_edges = decomposition.uncovered_edges;
  for (const auto& part : decomposition.partitions)
    out.max_cluster_radius = std::max(out.max_cluster_radius, part.max_radius);

  const std::size_t ell = decomposition.partitions.size();
  std::vector<std::unique_ptr<NodeProgram>> programs;
  programs.reserve(g.n());
  for (VertexId v = 0; v < g.n(); ++v) {
    std::vector<VertexId> centers(ell), parents(ell);
    for (std::size_t j = 0; j < ell; ++j) {
      centers[j] = decomposition.partitions[j].center_of[v];
      parents[j] = decomposition.partitions[j].parent_of[v];
    }
    programs.push_back(std::make_unique<LocalSpannerProgram>(
        config, g.weighted(), std::move(centers), std::move(parents)));
  }

  Network net(g, ModelLimits::local());
  net.install(std::move(programs));
  // Convergecast + broadcast both traverse the tree: 2*radius + O(1).
  out.stats = net.run(2 * out.max_cluster_radius + 8);
  FTSPAN_REQUIRE(out.stats.completed, "LOCAL spanner failed to quiesce");

  // Union of all cluster solutions (collected at the centers).
  out.spanner = Graph(g.n(), g.weighted());
  for (VertexId v = 0; v < g.n(); ++v) {
    const auto& program = static_cast<LocalSpannerProgram&>(net.program(v));
    for (const auto& e : program.chosen_edges())
      out.spanner.ensure_edge(e.u, e.v, e.w);
  }
  // Safety net for the (whp-null) event that an edge is covered by no
  // cluster: keep it, so the output is always a valid FT spanner.
  for (const auto& e : g.edges()) {
    bool covered = false;
    for (const auto& part : decomposition.partitions)
      if (part.center_of[e.u] == part.center_of[e.v]) {
        covered = true;
        break;
      }
    if (!covered) out.spanner.ensure_edge(e.u, e.v, e.w);
  }
  return out;
}

}  // namespace ftspan::distrib
